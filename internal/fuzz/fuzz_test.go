package fuzz

import (
	"strings"
	"testing"

	"pmc/internal/conform"
	"pmc/internal/litmus"
	"pmc/internal/rt"
)

// TestCampaignHealthyBackends is the headline acceptance run: a seeded
// 500-program campaign across the paper's four backends completes with
// zero model violations and zero execution errors — the generated
// scenario space stays inside the PMC envelope on every architecture.
func TestCampaignHealthyBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("500-program campaign")
	}
	sum, err := Run(Config{Seed: 1, N: 500, Gen: GenConfig{Mode: ModeMixed}, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Ok() {
		t.Fatalf("campaign not clean:\n%s", sum)
	}
	if sum.SkippedStuck != 0 {
		t.Fatalf("generator produced %d deadlockable programs", sum.SkippedStuck)
	}
	if sum.Unique < 400 || sum.Checked < sum.Unique*3 {
		t.Fatalf("campaign coverage collapsed: %d unique, %d checked", sum.Unique, sum.Checked)
	}
}

// TestCampaignCatchesInjectedFault runs the same seeded campaign against
// an swcc backend with the exit-flush protocol step disabled
// (release-without-flush): the fuzzer must detect model violations and
// the shrinker must reduce one to a counterexample of at most 8
// instructions.
func TestCampaignCatchesInjectedFault(t *testing.T) {
	if testing.Short() {
		t.Skip("500-program campaign")
	}
	sum, err := Run(Config{
		Seed: 1, N: 500, Gen: GenConfig{Mode: ModeMixed}, Runs: 2,
		Backends:  []string{"swcc"},
		Shrink:    true,
		MaxShrink: 3,
		MakeBackend: func(name string) (rt.Backend, error) {
			b, err := rt.ByName(name)
			if err != nil {
				return nil, err
			}
			return rt.InjectFaults(b, rt.FaultSet{SkipExitFlush: true}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Violations) == 0 {
		t.Fatal("fault-injected swcc produced no violations: the fuzzer is blind")
	}
	best := 1 << 30
	for _, v := range sum.Violations {
		if v.Shrunk == nil {
			continue
		}
		if n := litmus.InstrCount(*v.Shrunk); n < best {
			best = n
		}
		// The shrunk program must itself still violate.
		if v.ShrunkReport == nil || v.ShrunkReport.Ok() {
			t.Errorf("seed %d: shrunk program no longer violates", v.Seed)
		}
	}
	if best > 8 {
		t.Fatalf("no violation shrank to <= 8 instructions (best %d)", best)
	}
}

// TestGenerateDeterministic: the same seed always yields the same program,
// and nearby seeds yield different ones.
func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Mode: ModeMixed}
	a := Generate(42, cfg)
	b := Generate(42, cfg)
	if Render(a) != Render(b) || litmus.Fingerprint(a) != litmus.Fingerprint(b) {
		t.Fatal("same seed generated different programs")
	}
	distinct := map[string]bool{}
	for s := int64(0); s < 20; s++ {
		distinct[litmus.Fingerprint(Generate(s, cfg))] = true
	}
	if len(distinct) < 10 {
		t.Fatalf("20 seeds produced only %d distinct programs", len(distinct))
	}
}

// TestGeneratedProgramsAreValid: every generated program passes the
// explorer's static validation in all modes, has at least one observed
// register, and never nests or leaks scopes.
func TestGeneratedProgramsAreValid(t *testing.T) {
	for _, mode := range []Mode{ModeDRF, ModeRacy, ModeMixed} {
		for s := int64(0); s < 60; s++ {
			p := Generate(s, GenConfig{Mode: mode})
			x := litmus.NewExplorer(conform.EffectiveProgram(p))
			x.Workers = 1
			x.MaxStates = 300_000
			res, err := x.Run()
			if err != nil && !isBudget(err) {
				t.Fatalf("mode %s seed %d invalid: %v\n%s", mode, s, err, Render(p))
			}
			if err == nil && res.Stuck > 0 {
				t.Fatalf("mode %s seed %d can deadlock:\n%s", mode, s, Render(p))
			}
			if !hasObservation(p) {
				t.Fatalf("mode %s seed %d has no observable register", mode, s)
			}
		}
	}
}

// TestDRFModeIsAnnotated: DRF-mode programs keep every data access
// inside a scope; bare instructions are only flag writes and awaits.
func TestDRFModeIsAnnotated(t *testing.T) {
	for s := int64(0); s < 60; s++ {
		p := Generate(s, GenConfig{Mode: ModeDRF})
		for ti, th := range p.Threads {
			open := map[string]bool{}
			for _, in := range th {
				switch in.Kind {
				case litmus.IAcquire:
					open[in.Loc] = true
				case litmus.IRelease:
					delete(open, in.Loc)
				case litmus.IRead:
					if !open[in.Loc] {
						t.Fatalf("seed %d T%d: bare read of %s in DRF mode\n%s", s, ti, in.Loc, Render(p))
					}
				case litmus.IWrite:
					if !open[in.Loc] && !strings.HasPrefix(in.Loc, "f") {
						t.Fatalf("seed %d T%d: bare data write of %s in DRF mode\n%s", s, ti, in.Loc, Render(p))
					}
				}
			}
		}
	}
}

// TestShrinkMinimizesKnownCounterexample drives the shrinker with a pure
// model-level repro (no simulator): starting from the fully annotated
// fig5 program padded with noise, minimize while "the model forbids the
// stale read" keeps holding. The shrinker must strip the noise and the
// fences (the release→acquire sync edge alone pins the outcome) but keep
// the acquire/release pairs and the await.
func TestShrinkMinimizesKnownCounterexample(t *testing.T) {
	p := litmus.Program{
		Name: "shrink-mp",
		Locs: []string{"X", "f", "junk"},
		Threads: []litmus.Thread{
			{
				litmus.Write("junk", 7),
				litmus.Acquire("X"), litmus.Write("X", 42), litmus.Fence(), litmus.Release("X"),
				litmus.Write("f", 1),
			},
			{
				litmus.AwaitEq("f", 1, ""), litmus.Fence(),
				litmus.Acquire("X"), litmus.Read("X", "rX"), litmus.Release("X"),
			},
			{
				litmus.Read("junk", "rj"),
			},
		},
	}
	repro := func(c litmus.Program) bool {
		x := litmus.NewExplorer(conform.EffectiveProgram(c))
		x.Workers = 1
		x.MaxStates = 300_000
		res, err := x.Run()
		if err != nil || res.Stuck > 0 {
			return false
		}
		// Failure being minimized: a reader that observes rX and can
		// only ever observe 42.
		sawRX := false
		for _, o := range res.OutcomeList() {
			if strings.Contains(o, "rX=") {
				sawRX = true
				if !strings.Contains(o, "rX=42") {
					return false
				}
			}
		}
		return sawRX
	}
	if !repro(p) {
		t.Fatal("initial program does not reproduce")
	}
	min, steps := Shrink(p, repro)
	if steps == 0 {
		t.Fatal("shrinker accepted nothing")
	}
	if n := litmus.InstrCount(min); n > 8 {
		t.Fatalf("shrunk to %d instructions, want <= 8:\n%s", n, Render(min))
	}
	if len(min.Threads) != 2 {
		t.Fatalf("noise thread not dropped:\n%s", Render(min))
	}
	for _, th := range min.Threads {
		for _, in := range th {
			if in.Kind == litmus.IFence {
				t.Fatalf("redundant fence survived:\n%s", Render(min))
			}
			if in.Loc == "junk" {
				t.Fatalf("junk location survived:\n%s", Render(min))
			}
		}
	}
	// Pair discipline: acquires and releases stay matched.
	if err := exploreErr(min); err != nil {
		t.Fatalf("shrunk program invalid: %v", err)
	}
}

func exploreErr(p litmus.Program) error {
	x := litmus.NewExplorer(p)
	x.Workers = 1
	_, err := x.Run()
	return err
}

// TestShrinkPairsStayMatched: dropping an acquire always drops its
// matching release (and vice versa), even across interleaved scopes.
func TestShrinkDropInstrPairs(t *testing.T) {
	p := litmus.Program{
		Name: "pairs",
		Locs: []string{"A", "B"},
		Threads: []litmus.Thread{{
			litmus.Acquire("A"), litmus.Write("A", 1),
			litmus.Acquire("B"), litmus.Write("B", 1), litmus.Release("B"),
			litmus.Release("A"),
		}},
	}
	cand, ok := dropInstr(p, 0, 0) // drop Acquire(A)
	if !ok {
		t.Fatal("dropInstr failed")
	}
	for _, in := range cand.Threads[0] {
		if in.Kind == litmus.IRelease && in.Loc == "A" {
			t.Fatal("Release(A) survived dropping Acquire(A)")
		}
		if in.Kind == litmus.IAcquire && in.Loc == "B" {
			return // B's scope intact
		}
	}
	t.Fatal("B scope was damaged")
}

// TestSummaryDeterministicAcrossWorkers: the campaign summary is identical
// for 1 worker and many.
func TestSummaryDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		sum, err := Run(Config{Seed: 7, N: 40, Gen: GenConfig{Mode: ModeMixed}, Runs: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return sum.String()
	}
	if a, b := run(1), run(8); a != b {
		t.Fatalf("worker count changed the summary:\n%s\nvs\n%s", a, b)
	}
}

// TestCampaignReproducibleFromPrintedSeed: a violation found at Seed+i is
// found again by a 1-program campaign at that seed — the printed seed is
// all a reproduction needs.
func TestCampaignReproducibleFromPrintedSeed(t *testing.T) {
	faulty := func(name string) (rt.Backend, error) {
		b, err := rt.ByName(name)
		if err != nil {
			return nil, err
		}
		return rt.InjectFaults(b, rt.FaultSet{SkipExitFlush: true}), nil
	}
	sum, err := Run(Config{
		Seed: 1, N: 120, Gen: GenConfig{Mode: ModeMixed}, Runs: 2,
		Backends: []string{"swcc"}, MakeBackend: faulty,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Violations) == 0 {
		t.Skip("no violation in the first 120 programs")
	}
	v := sum.Violations[0]
	again, err := Run(Config{
		Seed: v.Seed, N: 1, Gen: GenConfig{Mode: ModeMixed}, Runs: 2,
		Backends: []string{"swcc"}, MakeBackend: faulty,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Violations) != 1 || again.Violations[0].Report.String() != v.Report.String() {
		t.Fatalf("seed %d did not reproduce the violation:\n%v\nvs\n%v", v.Seed, again.Violations, v.Report)
	}
}

// TestCampaignSpecCheck: a seeded campaign with spec-trace checking on —
// including mixed-routing programs, whose traces are attributed to the
// union of the placed backends' specs — completes with every recorded
// trace fully committed by the declared specs.
func TestCampaignSpecCheck(t *testing.T) {
	sum, err := Run(Config{
		Seed: 11, N: 60, Gen: GenConfig{Mode: ModeMixed}, Runs: 1,
		Backends:  []string{"swcc", "dsm", conform.MixedBackend},
		SpecCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Ok() {
		t.Fatalf("campaign not clean:\n%s", sum)
	}
	if sum.SpecChecked == 0 {
		t.Fatal("SpecCheck ran no trace checks")
	}
	if sum.SpecChecked != sum.Checked {
		t.Errorf("spec-checked %d of %d checked pairs", sum.SpecChecked, sum.Checked)
	}
}

package fuzz

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"pmc/internal/conform"
	"pmc/internal/litmus"
	"pmc/internal/rt"
	"pmc/internal/sim"
	"pmc/internal/spec"
	"pmc/internal/sweep"
)

// Config drives one fuzzing campaign. Everything derives from Seed: the
// program with index i is Generate(Seed+i, Gen), so any individual program
// — including every violation the summary reports — is reproducible by
// re-running with that program's printed seed and N=1.
type Config struct {
	// Seed is the base seed; program i uses seed Seed+i.
	Seed int64
	// N is the number of programs to generate.
	N int
	// Gen bounds the generator.
	Gen GenConfig
	// Backends lists the runtime backends to check (default: the paper's
	// four — nocc, swcc, dsm, spm).
	Backends []string
	// Tiles is the simulated system size (default: Gen.MaxThreads,
	// at least 2 — litmus threads map 1:1 onto tiles).
	Tiles int
	// Runs is the number of timing perturbations per (program, backend)
	// pair (default 3).
	Runs int
	// Workers caps concurrent program checks: 0 means GOMAXPROCS.
	Workers int
	// Shrink minimizes violating programs by delta debugging.
	Shrink bool
	// MaxShrink caps how many violations are shrunk (0 = 4). Shrinking
	// re-checks dozens of candidates per violation, and one minimized
	// counterexample per failure class is what a human needs.
	MaxShrink int
	// MaxStates is the per-program exploration budget (0 = 300k);
	// programs that exceed it are skipped and counted.
	MaxStates int
	// MaxCycles bounds each simulated run (0 = 400k cycles) so
	// livelocking candidates fail fast during shrinking.
	MaxCycles sim.Time
	// MakeBackend, if non-nil, constructs backends instead of rt.ByName
	// — the fault-injection hook (rt.InjectFaults) for proving the
	// fuzzer catches real protocol bugs.
	MakeBackend func(name string) (rt.Backend, error)
	// SpecCheck additionally runs each unique (program, backend) pair
	// once with the model recorder attached and attributes every edge of
	// the lowered trace to the backend's declared ordering spec
	// (spec.CheckTrace) — the differential fuzzer then hunts
	// spec/implementation divergence, not just model violations. Ignored
	// when MakeBackend is set: a substituted backend has no authored spec
	// to check against.
	SpecCheck bool
	// Progress, if non-nil, receives one line per violation (emitted in
	// campaign order after the parallel phase merges) and per shrink
	// result. It is only written from the calling goroutine.
	Progress io.Writer
}

// DefaultBackends is the paper's four-architecture matrix.
var DefaultBackends = []string{"nocc", "swcc", "dsm", "spm"}

func (c Config) withDefaults() Config {
	c.Gen = c.Gen.withDefaults()
	if len(c.Backends) == 0 {
		c.Backends = DefaultBackends
	}
	// A "mixed" backend entry checks per-location routing: it needs
	// programs that actually carry placements, so it implies a generator
	// backend pool (the paper's four protocols unless the caller set one).
	if len(c.Gen.BackendPool) == 0 {
		for _, b := range c.Backends {
			if b == conform.MixedBackend {
				c.Gen.BackendPool = DefaultBackends
				break
			}
		}
	}
	if c.Tiles == 0 {
		c.Tiles = c.Gen.MaxThreads
	}
	if c.Tiles < 2 {
		c.Tiles = 2
	}
	if c.Runs <= 0 {
		c.Runs = 3
	}
	if c.MaxShrink <= 0 {
		c.MaxShrink = 4
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 300_000
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 400_000
	}
	return c
}

// Violation is one program whose simulated outcomes escaped the model.
type Violation struct {
	// Seed regenerates the program: Generate(Seed, cfg.Gen).
	Seed    int64
	Backend string
	Program litmus.Program
	Report  *conform.Report
	// Shrunk is the delta-debugged minimal program still exhibiting a
	// violation on the same backend (nil when shrinking was off or
	// capped).
	Shrunk *litmus.Program
	// ShrunkReport is the conformance report of the shrunk program.
	ShrunkReport *conform.Report
	// ShrinkSteps counts accepted shrink candidates.
	ShrinkSteps int
}

// RunError is a program whose simulated execution failed outright
// (deadlock, watchdog livelock) — a liveness failure rather than a safety
// violation. Fault-injected runs routinely produce these.
type RunError struct {
	Seed    int64
	Backend string
	Err     string
}

// SpecDivergence is one (program, backend) pair whose recorded trace
// contains edges the backend's declared ordering spec does not commit —
// the implementation performs orderings its spec never promised, or the
// spec is out of date.
type SpecDivergence struct {
	Seed    int64
	Backend string
	// Edges counts unattributable edges; First is the first one.
	Edges int
	First string
}

// Summary is the result of a fuzzing campaign.
type Summary struct {
	Seed     int64
	N        int
	Mode     Mode
	Backends []string
	Runs     int

	// Unique is the number of distinct programs checked after canonical
	// fingerprint deduplication; Deduped counts the discarded copies.
	Unique, Deduped int
	// SkippedBudget counts programs whose exploration exceeded
	// MaxStates; SkippedStuck counts programs the model says can
	// deadlock (never produced by the generator's discipline — a
	// nonzero count is a generator bug surfacing).
	SkippedBudget, SkippedStuck int
	// Checked counts (program, backend) conformance checks completed.
	Checked int
	// SpecChecked counts (program, backend) recorded spec-trace checks
	// completed (Config.SpecCheck).
	SpecChecked int

	Violations      []*Violation
	Errors          []RunError
	SpecDivergences []SpecDivergence
}

// Ok reports a clean campaign: no violations, no execution errors, and no
// spec divergences.
func (s *Summary) Ok() bool {
	return len(s.Violations) == 0 && len(s.Errors) == 0 && len(s.SpecDivergences) == 0
}

// String renders the campaign result.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fuzz: seed %d, %d programs (%s mode): %d unique, %d duplicates, %d over budget, %d stuck\n",
		s.Seed, s.N, s.Mode, s.Unique, s.Deduped, s.SkippedBudget, s.SkippedStuck)
	fmt.Fprintf(&b, "checked %d program×backend pairs on %v (%d perturbed runs each): %d violations, %d run errors\n",
		s.Checked, s.Backends, s.Runs, len(s.Violations), len(s.Errors))
	for _, v := range s.Violations {
		fmt.Fprintf(&b, "  VIOLATION seed %d on %s: %s\n", v.Seed, v.Backend, v.Report)
		if v.Shrunk != nil {
			fmt.Fprintf(&b, "    shrunk %d -> %d instructions (%d steps):\n%s",
				litmus.InstrCount(v.Program), litmus.InstrCount(*v.Shrunk), v.ShrinkSteps,
				indent(Render(*v.Shrunk), "      "))
		}
	}
	for _, e := range s.Errors {
		fmt.Fprintf(&b, "  RUN ERROR seed %d on %s: %s\n", e.Seed, e.Backend, e.Err)
	}
	if s.SpecChecked > 0 || len(s.SpecDivergences) > 0 {
		fmt.Fprintf(&b, "spec-checked %d recorded traces: %d divergences\n",
			s.SpecChecked, len(s.SpecDivergences))
		for _, d := range s.SpecDivergences {
			fmt.Fprintf(&b, "  SPEC DIVERGENCE seed %d on %s: %d edges uncommitted, first: %s\n",
				d.Seed, d.Backend, d.Edges, d.First)
		}
	}
	return b.String()
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pre + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// Render prints a program as one line per thread (preceded by the widths
// of any multi-word locations), for violation reports.
func Render(p litmus.Program) string {
	var b strings.Builder
	if len(p.Widths) > 0 {
		var wide []string
		for _, loc := range p.Locs {
			if w := p.WidthOf(loc); w > 1 {
				wide = append(wide, fmt.Sprintf("%s[%d]", loc, w))
			}
		}
		if len(wide) > 0 {
			fmt.Fprintf(&b, "wide: %s\n", strings.Join(wide, " "))
		}
	}
	if len(p.Placement) > 0 {
		var placed []string
		for _, loc := range p.Locs {
			if pb := p.Placement[loc]; pb != "" {
				placed = append(placed, fmt.Sprintf("%s=%s", loc, pb))
			}
		}
		if len(placed) > 0 {
			fmt.Fprintf(&b, "place: %s\n", strings.Join(placed, " "))
		}
	}
	for ti, th := range p.Threads {
		fmt.Fprintf(&b, "T%d:", ti)
		for _, in := range th {
			b.WriteString(" " + renderInstr(in) + ";")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func renderInstr(in litmus.Instr) string {
	switch in.Kind {
	case litmus.IRead:
		return fmt.Sprintf("%s=read(%s)", in.Reg, in.Loc)
	case litmus.IWrite:
		return fmt.Sprintf("write(%s,%d)", in.Loc, in.Val)
	case litmus.IAcquire:
		return fmt.Sprintf("entry_x(%s)", in.Loc)
	case litmus.IRelease:
		return fmt.Sprintf("exit_x(%s)", in.Loc)
	case litmus.IFence:
		if in.Loc != "" {
			return fmt.Sprintf("fence(%s)", in.Loc)
		}
		return "fence()"
	case litmus.IFlush:
		return fmt.Sprintf("flush(%s)", in.Loc)
	case litmus.IAwaitEq:
		if in.Reg != "" {
			return fmt.Sprintf("%s=await(%s==%d)", in.Reg, in.Loc, in.Val)
		}
		return fmt.Sprintf("await(%s==%d)", in.Loc, in.Val)
	case litmus.IReadBlock:
		return fmt.Sprintf("%s=read_block(%s)", in.Reg, in.Loc)
	case litmus.IWriteBlock:
		return fmt.Sprintf("write_block(%s,%d..)", in.Loc, in.Val)
	}
	return fmt.Sprintf("instr(%d)", in.Kind)
}

// program is one generated campaign entry.
type program struct {
	seed int64
	prog litmus.Program
}

// Run executes the campaign. The summary is deterministic for a given
// config, independent of Workers.
func Run(cfg Config) (*Summary, error) {
	cfg = cfg.withDefaults()
	if cfg.N <= 0 {
		return nil, fmt.Errorf("fuzz: N must be positive")
	}
	if cfg.Gen.MaxThreads > cfg.Tiles {
		return nil, fmt.Errorf("fuzz: %d threads need at least %d tiles", cfg.Gen.MaxThreads, cfg.Gen.MaxThreads)
	}
	sum := &Summary{
		Seed: cfg.Seed, N: cfg.N, Mode: cfg.Gen.Mode,
		Backends: cfg.Backends, Runs: cfg.Runs,
	}

	// Generate serially and deduplicate by canonical fingerprint: the
	// unique set (and therefore the whole summary) is independent of the
	// worker count.
	seen := make(map[string]bool, cfg.N)
	var progs []program
	for i := 0; i < cfg.N; i++ {
		seed := cfg.Seed + int64(i)
		p := Generate(seed, cfg.Gen)
		fp := litmus.Fingerprint(p)
		if seen[fp] {
			sum.Deduped++
			continue
		}
		seen[fp] = true
		progs = append(progs, program{seed: seed, prog: p})
	}
	sum.Unique = len(progs)

	type result struct {
		skippedBudget   bool
		skippedStuck    bool
		checked         int
		specChecked     int
		violations      []*Violation
		errors          []RunError
		specDivergences []SpecDivergence
	}
	results := make([]result, len(progs))
	err := sweep.Each(len(progs), cfg.Workers, func(i int) error {
		res := &results[i]
		pr := progs[i]
		model, err := explore(pr.prog, cfg.MaxStates)
		if err != nil {
			if isBudget(err) {
				res.skippedBudget = true
				return nil
			}
			return fmt.Errorf("fuzz seed %d: %w", pr.seed, err)
		}
		if model.Stuck > 0 {
			res.skippedStuck = true
			return nil
		}
		for _, backend := range cfg.Backends {
			rep, err := conform.CheckOpts(pr.prog, backend, conform.Options{
				Tiles:     cfg.Tiles,
				Runs:      cfg.Runs,
				Seed:      pr.seed,
				MaxCycles: cfg.MaxCycles,
				Model:     model,
				Backend:   makeBackend(cfg, backend),
			})
			if err != nil {
				res.errors = append(res.errors, RunError{Seed: pr.seed, Backend: backend, Err: err.Error()})
				continue
			}
			res.checked++
			if !rep.Ok() {
				res.violations = append(res.violations,
					&Violation{Seed: pr.seed, Backend: backend, Program: pr.prog, Report: rep})
			}
			if cfg.SpecCheck && cfg.MakeBackend == nil {
				div, runErr, ok := specCheckOne(cfg, pr, backend)
				switch {
				case runErr != nil:
					res.errors = append(res.errors, *runErr)
				case ok:
					res.specChecked++
					if div != nil {
						res.specDivergences = append(res.specDivergences, *div)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Progress is emitted after the deterministic merge, from this single
	// goroutine: worker goroutines never touch the writer (it need not be
	// thread-safe) and the lines come out in campaign order.
	for i := range results {
		res := &results[i]
		if res.skippedBudget {
			sum.SkippedBudget++
		}
		if res.skippedStuck {
			sum.SkippedStuck++
		}
		sum.Checked += res.checked
		sum.SpecChecked += res.specChecked
		sum.Violations = append(sum.Violations, res.violations...)
		sum.Errors = append(sum.Errors, res.errors...)
		sum.SpecDivergences = append(sum.SpecDivergences, res.specDivergences...)
		if cfg.Progress != nil {
			for _, v := range res.violations {
				fmt.Fprintf(cfg.Progress, "fuzz: VIOLATION seed %d on %s: %s\n", v.Seed, v.Backend, v.Report)
			}
			for _, d := range res.specDivergences {
				fmt.Fprintf(cfg.Progress, "fuzz: SPEC DIVERGENCE seed %d on %s: %d edges, first: %s\n",
					d.Seed, d.Backend, d.Edges, d.First)
			}
		}
	}

	if cfg.Shrink {
		shrunk := 0
		for _, v := range sum.Violations {
			if shrunk >= cfg.MaxShrink {
				break
			}
			shrinkViolation(cfg, v)
			shrunk++
			if cfg.Progress != nil && v.Shrunk != nil {
				fmt.Fprintf(cfg.Progress, "fuzz: shrunk seed %d on %s to %d instructions:\n%s",
					v.Seed, v.Backend, litmus.InstrCount(*v.Shrunk), Render(*v.Shrunk))
			}
		}
	}
	return sum, nil
}

// specCheckOne runs one recorded simulation of the pair and attributes
// every trace edge to the backend's declared spec. A mixed run checks
// against the union of the placed backends' specs plus nocc (the default
// route) — any protocol may have committed any given edge. The bool
// reports whether the check completed (a recorder violation surfaces as a
// RunError instead: it is a model bug, already the conformance side's
// department, not a spec-attribution result).
func specCheckOne(cfg Config, pr program, backend string) (*SpecDivergence, *RunError, bool) {
	var specs []spec.Spec
	names := []string{backend}
	if backend == conform.MixedBackend {
		names = []string{"nocc"}
		seen := map[string]bool{"nocc": true}
		for _, loc := range pr.prog.Locs {
			if pb := pr.prog.Placement[loc]; pb != "" && !seen[pb] {
				seen[pb] = true
				names = append(names, pb)
			}
		}
	}
	for _, n := range names {
		s, err := spec.ForBackend(n)
		if err != nil {
			return nil, &RunError{Seed: pr.seed, Backend: backend, Err: err.Error()}, false
		}
		specs = append(specs, s)
	}
	eff := conform.EffectiveProgram(pr.prog)
	_, exec, err := conform.ExecuteRecorded(eff, backend, conform.Options{
		Tiles:     cfg.Tiles,
		Runs:      1,
		Seed:      pr.seed,
		MaxCycles: cfg.MaxCycles,
	}, uint32(pr.seed))
	if err != nil {
		return nil, &RunError{Seed: pr.seed, Backend: backend, Err: "spec check: " + err.Error()}, false
	}
	if probs := spec.CheckTrace(exec, specs...); len(probs) > 0 {
		return &SpecDivergence{Seed: pr.seed, Backend: backend, Edges: len(probs), First: probs[0]}, nil, true
	}
	return nil, nil, true
}

// explore runs the model on the effective program with a state budget.
// Exploration is single-threaded: the campaign parallelizes across
// programs, not within one.
func explore(p litmus.Program, maxStates int) (*litmus.Result, error) {
	x := litmus.NewExplorer(conform.EffectiveProgram(p))
	x.Workers = 1
	x.MaxStates = maxStates
	return x.Run()
}

func isBudget(err error) bool { return errors.Is(err, litmus.ErrBudget) }

// makeBackend adapts the config's backend hook to a conform factory.
func makeBackend(cfg Config, name string) func() (rt.Backend, error) {
	if cfg.MakeBackend == nil {
		return nil
	}
	return func() (rt.Backend, error) { return cfg.MakeBackend(name) }
}

// shrinkViolation minimizes v.Program while it still yields any forbidden
// outcome on v.Backend, and attaches the result. The repro closure caches
// the last failing report so the final accepted candidate's report is
// reused instead of re-checked.
func shrinkViolation(cfg Config, v *Violation) {
	var last *conform.Report
	repro := func(p litmus.Program) bool {
		rep := checkOnce(cfg, p, v)
		if rep != nil && !rep.Ok() {
			last = rep
			return true
		}
		return false
	}
	min, steps := Shrink(v.Program, repro)
	v.ShrinkSteps = steps
	v.Shrunk = &min
	if steps == 0 {
		// Nothing was accepted: the minimum is the original program,
		// whose report we already have.
		v.ShrunkReport = v.Report
		return
	}
	v.ShrunkReport = last
}

// checkOnce conformance-checks p on the violation's backend; nil on any
// error (unexplorable, deadlocked or livelocked candidates do not
// reproduce).
func checkOnce(cfg Config, p litmus.Program, v *Violation) *conform.Report {
	model, err := explore(p, cfg.MaxStates)
	if err != nil || model.Stuck > 0 {
		return nil
	}
	rep, err := conform.CheckOpts(p, v.Backend, conform.Options{
		Tiles:     cfg.Tiles,
		Runs:      cfg.Runs,
		Seed:      v.Seed,
		MaxCycles: cfg.MaxCycles,
		Model:     model,
		Backend:   makeBackend(cfg, v.Backend),
	})
	if err != nil {
		return nil
	}
	return rep
}
